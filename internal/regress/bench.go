package regress

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"
)

// This file is the machine-readable benchmark side of the regression
// subsystem: cmd/adascale-bench -json measures every experiment into a
// Report, the committed BENCH_*.json files form the repo's performance
// trajectory, and Compare is the gate that fails a candidate report on a
// time regression beyond tolerance or on *any* regression of a guarded
// accuracy metric. Wall-clock numbers are machine-specific — the Machine
// block records the context they were measured in — while accuracy metrics
// (mAP, mean scale) come from the deterministic pipeline and must
// reproduce exactly on any machine.

// SchemaVersion identifies the report layout; bump when fields change
// incompatibly so old baselines fail loudly instead of comparing garbage.
// v2 added per-stage ns/op (Entry.Stages); v3 added per-stage allocs/op
// (Entry.StageAllocs) and the allocation gate. Reports back to
// MinSchemaVersion still load — v2/v3 only added fields — so an old
// committed baseline keeps gating until it is regenerated; Compare reports
// a finding when the candidate's schema is older than the baseline's.
const (
	SchemaVersion    = 3
	MinSchemaVersion = 1
)

// Machine records the hardware/runtime context a report was measured in.
type Machine struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// CurrentMachine captures the running process's context.
func CurrentMachine() Machine {
	return Machine{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// String renders the machine stamp compactly for gate messages.
func (m Machine) String() string {
	return fmt.Sprintf("%s %s/%s cpu=%d maxprocs=%d",
		m.GoVersion, m.GOOS, m.GOARCH, m.NumCPU, m.GOMAXPROCS)
}

// Equal reports whether two machine stamps match. Wall-clock comparisons
// between reports from different machines are meaningless; the diff tool
// refuses them unless the time gate is disabled.
func (m Machine) Equal(o Machine) bool { return m == o }

// Sample is one measured benchmark: mean wall time and allocations per
// operation over Iters timed iterations (after one untimed warmup).
type Sample struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	Iters       int   `json:"iters"`
}

// Entry is one benchmark's record: its Sample plus the accuracy metrics
// extracted from the experiment result it regenerated. Metric keys with
// the "map" prefix are guarded (higher is better; any decrease beyond
// tolerance fails Compare); all other keys are informational trajectory.
type Entry struct {
	Name string `json:"name"`
	Sample
	Metrics map[string]float64 `json:"metrics,omitempty"`

	// Stages (schema v2) apportions NsPerOp across pipeline stages by the
	// tracer's deterministic virtual-time shares: stage_ns = ns_per_op ×
	// stage_ms / total_ms. Comparing per-stage lets the gate localise a
	// time regression to the stage that caused it.
	Stages map[string]int64 `json:"stages_ns_per_op,omitempty"`

	// StageAllocs (schema v3) apportions AllocsPerOp across pipeline
	// stages by the same virtual-time shares, so an allocation regression
	// is localised the same way a time regression is — the detect stage
	// growing allocations fails even when the total stays inside the
	// (wider) total-alloc tolerance.
	StageAllocs map[string]int64 `json:"stages_allocs_per_op,omitempty"`
}

// Report is one full benchmark run.
type Report struct {
	Schema  int               `json:"schema"`
	Machine Machine           `json:"machine"`
	Config  map[string]string `json:"config,omitempty"`
	Entries []Entry           `json:"entries"`
}

// NewReport creates an empty report stamped with the current machine.
func NewReport(config map[string]string) *Report {
	return &Report{Schema: SchemaVersion, Machine: CurrentMachine(), Config: config}
}

// Add appends one measured entry.
func (r *Report) Add(name string, s Sample, metrics map[string]float64) {
	r.Entries = append(r.Entries, Entry{Name: name, Sample: s, Metrics: metrics})
}

// SetStages attaches the per-stage ns/op and allocs/op breakdowns to the
// named entry (no-op if the entry does not exist; either map may be empty).
// Kept separate from Add so callers without stage attribution keep their
// call sites unchanged.
func (r *Report) SetStages(name string, stages, stageAllocs map[string]int64) {
	e := r.Entry(name)
	if e == nil {
		return
	}
	if len(stages) > 0 {
		e.Stages = stages
	}
	if len(stageAllocs) > 0 {
		e.StageAllocs = stageAllocs
	}
}

// Entry returns the named entry, or nil.
func (r *Report) Entry(name string) *Entry {
	for i := range r.Entries {
		if r.Entries[i].Name == name {
			return &r.Entries[i]
		}
	}
	return nil
}

// WriteFile serializes the report as indented JSON with a trailing
// newline (so the committed baseline diffs cleanly).
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadReport reads and validates a report file.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("regress: %s: %w", path, err)
	}
	if r.Schema < MinSchemaVersion || r.Schema > SchemaVersion {
		return nil, fmt.Errorf("regress: %s: schema %d, want %d..%d", path, r.Schema, MinSchemaVersion, SchemaVersion)
	}
	if len(r.Entries) == 0 {
		return nil, fmt.Errorf("regress: %s: no benchmark entries", path)
	}
	return &r, nil
}

// Measure times one operation: one untimed warmup call (which also pays
// any lazy training/memoisation), then timed iterations until minTime has
// elapsed (at least one). Allocations are read from runtime.MemStats
// deltas — coarse, but dependency-free and stable enough to catch
// order-of-magnitude allocation regressions.
func Measure(f func(), minTime time.Duration) Sample {
	f() // warmup
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	startMallocs := ms.Mallocs
	start := time.Now()
	iters := 0
	for {
		f()
		iters++
		if time.Since(start) >= minTime {
			break
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms)
	return Sample{
		NsPerOp:     elapsed.Nanoseconds() / int64(iters),
		AllocsPerOp: int64(ms.Mallocs-startMallocs) / int64(iters),
		Iters:       iters,
	}
}

// GuardedMetric reports whether a metric key is an accuracy gate ("map"
// prefix: mAP-like, higher is better) rather than informational.
func GuardedMetric(key string) bool { return strings.HasPrefix(key, "map") }

// CompareOptions tunes the regression gate.
type CompareOptions struct {
	// MaxTimeRegressPct is the allowed ns/op increase over baseline in
	// percent; <= 0 means the default 25. Wall time is noisy, so the
	// tolerance is deliberately wide — the accuracy gate is the tight one.
	MaxTimeRegressPct float64

	// MaxAllocRegressPct is the allowed allocs/op increase over baseline
	// in percent (total and per stage); <= 0 means the default 10.
	// Allocation counts are far less noisy than wall time on a fixed
	// machine and Go version, so the tolerance is much tighter.
	MaxAllocRegressPct float64

	// AccuracyTol absorbs float formatting noise on guarded metrics;
	// <= 0 means 1e-9 (the pipeline is bit-deterministic, so any real
	// change is far larger).
	AccuracyTol float64

	// IgnoreTime disables the ns/op, allocs/op and per-stage gates,
	// leaving only the accuracy and coverage gates. This is how CI
	// compares against a committed baseline measured on different
	// hardware: wall time across machines is meaningless (and allocation
	// counts shift with the Go runtime), accuracy must still reproduce
	// exactly.
	IgnoreTime bool
}

func (o CompareOptions) withDefaults() CompareOptions {
	if o.MaxTimeRegressPct <= 0 {
		o.MaxTimeRegressPct = 25
	}
	if o.MaxAllocRegressPct <= 0 {
		o.MaxAllocRegressPct = 10
	}
	if o.AccuracyTol <= 0 {
		o.AccuracyTol = 1e-9
	}
	return o
}

// Regression is one comparator finding.
type Regression struct {
	Entry  string
	Kind   string // "time", "stage", "alloc", "accuracy", "missing-entry", "missing-metric", "schema"
	Detail string
}

// String renders the finding for gate output.
func (r Regression) String() string {
	return fmt.Sprintf("%s: %s regression: %s", r.Entry, r.Kind, r.Detail)
}

// Compare gates a candidate report against a baseline: every baseline
// entry must exist in the candidate, guarded accuracy metrics must not
// decrease beyond tolerance, and ns/op must not grow beyond the time
// tolerance. Entries or metrics only present in the candidate are fine
// (coverage can grow, never silently shrink). Findings come back sorted by
// entry name.
func Compare(base, cand *Report, opts CompareOptions) []Regression {
	opts = opts.withDefaults()
	var regs []Regression
	// Schema compatibility: a candidate written by an older tool than the
	// baseline's cannot carry everything the baseline gates on (e.g. v1
	// has no stage breakdown against a v2 baseline).
	if cand.Schema < base.Schema {
		regs = append(regs, Regression{Entry: "report", Kind: "schema",
			Detail: fmt.Sprintf("candidate schema %d older than baseline schema %d — regenerate the candidate", cand.Schema, base.Schema)})
	}
	for _, be := range base.Entries {
		ce := cand.Entry(be.Name)
		if ce == nil {
			regs = append(regs, Regression{Entry: be.Name, Kind: "missing-entry",
				Detail: "benchmark present in baseline but absent from candidate"})
			continue
		}
		if !opts.IgnoreTime && be.NsPerOp > 0 && ce.NsPerOp > 0 {
			limit := float64(be.NsPerOp) * (1 + opts.MaxTimeRegressPct/100)
			if float64(ce.NsPerOp) > limit {
				regs = append(regs, Regression{Entry: be.Name, Kind: "time",
					Detail: fmt.Sprintf("ns/op %d -> %d (+%.1f%%, tolerance %.0f%%)",
						be.NsPerOp, ce.NsPerOp,
						100*(float64(ce.NsPerOp)/float64(be.NsPerOp)-1), opts.MaxTimeRegressPct)})
			}
			// Per-stage localisation (schema v2): a stage whose apportioned
			// ns/op grew beyond the same tolerance is flagged by name, so a
			// regression points at decode vs backbone vs seqnms instead of
			// only at the total. Stages absent from either side are skipped
			// (coverage can grow; a vanished stage shows up in the total).
			for _, k := range sortedStageKeys(be.Stages) {
				bs, cs := be.Stages[k], ce.Stages[k]
				if bs <= 0 || cs <= 0 {
					continue
				}
				if float64(cs) > float64(bs)*(1+opts.MaxTimeRegressPct/100) {
					regs = append(regs, Regression{Entry: be.Name, Kind: "stage",
						Detail: fmt.Sprintf("stage %s ns/op %d -> %d (+%.1f%%, tolerance %.0f%%)",
							k, bs, cs, 100*(float64(cs)/float64(bs)-1), opts.MaxTimeRegressPct)})
				}
			}
		}
		// Allocation gate (schema v3): allocs/op is near-deterministic on a
		// fixed machine + Go version, so the tolerance is tight. Gated
		// alongside time — cross-machine (IgnoreTime) comparisons skip it,
		// as runtime internals shift allocation counts between Go versions.
		if !opts.IgnoreTime && be.AllocsPerOp > 0 && ce.AllocsPerOp > 0 {
			if float64(ce.AllocsPerOp) > float64(be.AllocsPerOp)*(1+opts.MaxAllocRegressPct/100) {
				regs = append(regs, Regression{Entry: be.Name, Kind: "alloc",
					Detail: fmt.Sprintf("allocs/op %d -> %d (+%.1f%%, tolerance %.0f%%)",
						be.AllocsPerOp, ce.AllocsPerOp,
						100*(float64(ce.AllocsPerOp)/float64(be.AllocsPerOp)-1), opts.MaxAllocRegressPct)})
			}
			for _, k := range sortedStageKeys(be.StageAllocs) {
				bs, cs := be.StageAllocs[k], ce.StageAllocs[k]
				if bs <= 0 || cs <= 0 {
					continue
				}
				if float64(cs) > float64(bs)*(1+opts.MaxAllocRegressPct/100) {
					regs = append(regs, Regression{Entry: be.Name, Kind: "alloc",
						Detail: fmt.Sprintf("stage %s allocs/op %d -> %d (+%.1f%%, tolerance %.0f%%)",
							k, bs, cs, 100*(float64(cs)/float64(bs)-1), opts.MaxAllocRegressPct)})
				}
			}
		}
		for _, k := range sortedMetricKeys(be.Metrics) {
			if !GuardedMetric(k) {
				continue
			}
			cv, ok := ce.Metrics[k]
			if !ok {
				regs = append(regs, Regression{Entry: be.Name, Kind: "missing-metric",
					Detail: fmt.Sprintf("guarded metric %q absent from candidate", k)})
				continue
			}
			if bv := be.Metrics[k]; bv-cv > opts.AccuracyTol {
				regs = append(regs, Regression{Entry: be.Name, Kind: "accuracy",
					Detail: fmt.Sprintf("%s %.6f -> %.6f (-%.6f)", k, bv, cv, bv-cv)})
			}
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Entry != regs[j].Entry {
			return regs[i].Entry < regs[j].Entry
		}
		return regs[i].Detail < regs[j].Detail
	})
	return regs
}

func sortedStageKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedMetricKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
