package regress

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"
)

// This file is the machine-readable benchmark side of the regression
// subsystem: cmd/adascale-bench -json measures every experiment into a
// Report, the committed BENCH_*.json files form the repo's performance
// trajectory, and Compare is the gate that fails a candidate report on a
// time regression beyond tolerance or on *any* regression of a guarded
// accuracy metric. Wall-clock numbers are machine-specific — the Machine
// block records the context they were measured in — while accuracy metrics
// (mAP, mean scale) come from the deterministic pipeline and must
// reproduce exactly on any machine.

// SchemaVersion identifies the report layout; bump when fields change
// incompatibly so old baselines fail loudly instead of comparing garbage.
const SchemaVersion = 1

// Machine records the hardware/runtime context a report was measured in.
type Machine struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// CurrentMachine captures the running process's context.
func CurrentMachine() Machine {
	return Machine{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// Sample is one measured benchmark: mean wall time and allocations per
// operation over Iters timed iterations (after one untimed warmup).
type Sample struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	Iters       int   `json:"iters"`
}

// Entry is one benchmark's record: its Sample plus the accuracy metrics
// extracted from the experiment result it regenerated. Metric keys with
// the "map" prefix are guarded (higher is better; any decrease beyond
// tolerance fails Compare); all other keys are informational trajectory.
type Entry struct {
	Name string `json:"name"`
	Sample
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is one full benchmark run.
type Report struct {
	Schema  int               `json:"schema"`
	Machine Machine           `json:"machine"`
	Config  map[string]string `json:"config,omitempty"`
	Entries []Entry           `json:"entries"`
}

// NewReport creates an empty report stamped with the current machine.
func NewReport(config map[string]string) *Report {
	return &Report{Schema: SchemaVersion, Machine: CurrentMachine(), Config: config}
}

// Add appends one measured entry.
func (r *Report) Add(name string, s Sample, metrics map[string]float64) {
	r.Entries = append(r.Entries, Entry{Name: name, Sample: s, Metrics: metrics})
}

// Entry returns the named entry, or nil.
func (r *Report) Entry(name string) *Entry {
	for i := range r.Entries {
		if r.Entries[i].Name == name {
			return &r.Entries[i]
		}
	}
	return nil
}

// WriteFile serializes the report as indented JSON with a trailing
// newline (so the committed baseline diffs cleanly).
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadReport reads and validates a report file.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("regress: %s: %w", path, err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("regress: %s: schema %d, want %d", path, r.Schema, SchemaVersion)
	}
	if len(r.Entries) == 0 {
		return nil, fmt.Errorf("regress: %s: no benchmark entries", path)
	}
	return &r, nil
}

// Measure times one operation: one untimed warmup call (which also pays
// any lazy training/memoisation), then timed iterations until minTime has
// elapsed (at least one). Allocations are read from runtime.MemStats
// deltas — coarse, but dependency-free and stable enough to catch
// order-of-magnitude allocation regressions.
func Measure(f func(), minTime time.Duration) Sample {
	f() // warmup
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	startMallocs := ms.Mallocs
	start := time.Now()
	iters := 0
	for {
		f()
		iters++
		if time.Since(start) >= minTime {
			break
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms)
	return Sample{
		NsPerOp:     elapsed.Nanoseconds() / int64(iters),
		AllocsPerOp: int64(ms.Mallocs-startMallocs) / int64(iters),
		Iters:       iters,
	}
}

// GuardedMetric reports whether a metric key is an accuracy gate ("map"
// prefix: mAP-like, higher is better) rather than informational.
func GuardedMetric(key string) bool { return strings.HasPrefix(key, "map") }

// CompareOptions tunes the regression gate.
type CompareOptions struct {
	// MaxTimeRegressPct is the allowed ns/op increase over baseline in
	// percent; <= 0 means the default 25. Wall time is noisy, so the
	// tolerance is deliberately wide — the accuracy gate is the tight one.
	MaxTimeRegressPct float64

	// AccuracyTol absorbs float formatting noise on guarded metrics;
	// <= 0 means 1e-9 (the pipeline is bit-deterministic, so any real
	// change is far larger).
	AccuracyTol float64
}

func (o CompareOptions) withDefaults() CompareOptions {
	if o.MaxTimeRegressPct <= 0 {
		o.MaxTimeRegressPct = 25
	}
	if o.AccuracyTol <= 0 {
		o.AccuracyTol = 1e-9
	}
	return o
}

// Regression is one comparator finding.
type Regression struct {
	Entry  string
	Kind   string // "time", "accuracy", "missing-entry", "missing-metric"
	Detail string
}

// String renders the finding for gate output.
func (r Regression) String() string {
	return fmt.Sprintf("%s: %s regression: %s", r.Entry, r.Kind, r.Detail)
}

// Compare gates a candidate report against a baseline: every baseline
// entry must exist in the candidate, guarded accuracy metrics must not
// decrease beyond tolerance, and ns/op must not grow beyond the time
// tolerance. Entries or metrics only present in the candidate are fine
// (coverage can grow, never silently shrink). Findings come back sorted by
// entry name.
func Compare(base, cand *Report, opts CompareOptions) []Regression {
	opts = opts.withDefaults()
	var regs []Regression
	for _, be := range base.Entries {
		ce := cand.Entry(be.Name)
		if ce == nil {
			regs = append(regs, Regression{Entry: be.Name, Kind: "missing-entry",
				Detail: "benchmark present in baseline but absent from candidate"})
			continue
		}
		if be.NsPerOp > 0 && ce.NsPerOp > 0 {
			limit := float64(be.NsPerOp) * (1 + opts.MaxTimeRegressPct/100)
			if float64(ce.NsPerOp) > limit {
				regs = append(regs, Regression{Entry: be.Name, Kind: "time",
					Detail: fmt.Sprintf("ns/op %d -> %d (+%.1f%%, tolerance %.0f%%)",
						be.NsPerOp, ce.NsPerOp,
						100*(float64(ce.NsPerOp)/float64(be.NsPerOp)-1), opts.MaxTimeRegressPct)})
			}
		}
		for _, k := range sortedMetricKeys(be.Metrics) {
			if !GuardedMetric(k) {
				continue
			}
			cv, ok := ce.Metrics[k]
			if !ok {
				regs = append(regs, Regression{Entry: be.Name, Kind: "missing-metric",
					Detail: fmt.Sprintf("guarded metric %q absent from candidate", k)})
				continue
			}
			if bv := be.Metrics[k]; bv-cv > opts.AccuracyTol {
				regs = append(regs, Regression{Entry: be.Name, Kind: "accuracy",
					Detail: fmt.Sprintf("%s %.6f -> %.6f (-%.6f)", k, bv, cv, bv-cv)})
			}
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Entry != regs[j].Entry {
			return regs[i].Entry < regs[j].Entry
		}
		return regs[i].Detail < regs[j].Detail
	})
	return regs
}

func sortedMetricKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
