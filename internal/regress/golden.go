// Package regress is the repo's conformance and regression subsystem.
//
// It has two halves. golden.go turns the determinism contract — every
// pipeline's output stream is byte-identical across runs, seeds held
// fixed, at any worker count — from scattered ad-hoc assertions into a
// gate: canonical end-to-end traces (per-frame scale decisions and
// detection digests, experiment tables and figures, health summaries,
// serving metric snapshots) are committed under testdata/golden/ and every
// conformance test replays its trace at workers 1 and 4 and requires byte
// equality with the committed file. bench.go is the machine-readable
// benchmark side: a Report of ns/op, allocs/op and accuracy metrics per
// experiment, serialized as JSON (the committed BENCH_*.json trajectory)
// with a comparator that fails on time or accuracy regressions.
//
// Updating goldens after an intentional behaviour change:
//
//	go test ./internal/regress -run TestGolden -update
//
// and review the diff like any other code change.
package regress

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adascale/internal/parallel"
)

// update rewrites the golden files instead of comparing against them. It
// registers on the default flag set, so `go test ./internal/regress
// -update` regenerates every trace in one run.
var update = flag.Bool("update", false, "rewrite testdata/golden files instead of comparing")

// GoldenPath returns the committed location of a named golden trace.
func GoldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".txt")
}

// Golden compares got against the committed golden file, or rewrites the
// file when -update is set. On mismatch it reports the first differing
// line, which is usually enough to see whether the diff is an intended
// behaviour change (rerun with -update) or a determinism break.
func Golden(t *testing.T, name, got string) {
	t.Helper()
	path := GoldenPath(name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden %s rewritten (%d bytes)", name, len(got))
		return
	}
	wantBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden %q missing — run `go test ./internal/regress -update` and commit the result: %v", name, err)
	}
	want := string(wantBytes)
	if want == got {
		return
	}
	t.Errorf("golden %q: output diverged from committed trace\n%s", name, firstDiff(want, got))
}

// firstDiff renders the first line where two texts diverge, or the line
// counts when one text is a prefix of the other.
func firstDiff(want, got string) string {
	w := strings.Split(strings.TrimSuffix(want, "\n"), "\n")
	g := strings.Split(strings.TrimSuffix(got, "\n"), "\n")
	n := len(w)
	if len(g) < n {
		n = len(g)
	}
	for i := 0; i < n; i++ {
		if w[i] != g[i] {
			return fmt.Sprintf("line %d:\n  want: %q\n  got:  %q", i+1, w[i], g[i])
		}
	}
	if len(w) != len(g) {
		return fmt.Sprintf("line count: want %d, got %d", len(w), len(g))
	}
	return "texts differ only in trailing newline"
}

// ConformanceWorkerCounts is the worker matrix every golden trace replays
// at: the serial path and a contended pool. Byte equality across the two
// is the determinism contract; equality with the committed golden pins the
// behaviour itself.
var ConformanceWorkerCounts = []int{1, 4}

// AtWorkers produces the trace at every worker count in the matrix,
// asserts all productions are byte-identical, restores the default worker
// count, and returns the trace. Use the result with Golden.
func AtWorkers(t *testing.T, produce func() string) string {
	t.Helper()
	t.Cleanup(func() { parallel.SetWorkers(0) })
	var ref string
	for i, workers := range ConformanceWorkerCounts {
		parallel.SetWorkers(workers)
		got := produce()
		if i == 0 {
			ref = got
			continue
		}
		if got != ref {
			t.Fatalf("trace diverged between workers=%d and workers=%d\n%s",
				ConformanceWorkerCounts[0], workers, firstDiff(ref, got))
		}
	}
	parallel.SetWorkers(0)
	return ref
}
