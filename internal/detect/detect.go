// Package detect defines the shared detection vocabulary — boxes,
// detections, ground truth — plus the geometric and algorithmic primitives
// every stage of the pipeline relies on: Jaccard overlap (IoU), greedy
// Non-Maximum Suppression (the paper uses threshold 0.3 and keeps the
// top-300 boxes), and foreground assignment at IoU ≥ 0.5.
package detect

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Box is an axis-aligned bounding box in native image coordinates
// (x1,y1 top-left inclusive, x2,y2 bottom-right exclusive-ish; float
// coordinates, x2>x1 and y2>y1 for non-degenerate boxes).
type Box struct {
	X1, Y1, X2, Y2 float64
}

// W returns the box width (0 if degenerate).
func (b Box) W() float64 {
	if b.X2 <= b.X1 {
		return 0
	}
	return b.X2 - b.X1
}

// H returns the box height (0 if degenerate).
func (b Box) H() float64 {
	if b.Y2 <= b.Y1 {
		return 0
	}
	return b.Y2 - b.Y1
}

// Area returns the box area.
func (b Box) Area() float64 { return b.W() * b.H() }

// Center returns the box centre point.
func (b Box) Center() (float64, float64) { return (b.X1 + b.X2) / 2, (b.Y1 + b.Y2) / 2 }

// Shortest returns the shorter box side, the quantity compared against the
// RPN's smallest anchor (128 px in the paper).
func (b Box) Shortest() float64 {
	if b.W() < b.H() {
		return b.W()
	}
	return b.H()
}

// Scaled returns the box with all coordinates multiplied by f, mapping
// between image scales.
func (b Box) Scaled(f float64) Box {
	return Box{X1: b.X1 * f, Y1: b.Y1 * f, X2: b.X2 * f, Y2: b.Y2 * f}
}

// Shifted returns the box translated by (dx, dy).
func (b Box) Shifted(dx, dy float64) Box {
	return Box{X1: b.X1 + dx, Y1: b.Y1 + dy, X2: b.X2 + dx, Y2: b.Y2 + dy}
}

// String renders the box compactly for logs.
func (b Box) String() string {
	return fmt.Sprintf("[%.1f,%.1f,%.1f,%.1f]", b.X1, b.Y1, b.X2, b.Y2)
}

// IoU returns the Jaccard overlap (intersection over union) of two boxes,
// in [0, 1]. Degenerate boxes yield 0 — including boxes carrying NaN or
// infinite coordinates, whose inverted comparisons would otherwise leak
// NaN into every downstream threshold (the guards are written as negated
// positives so a NaN intermediate takes the zero path).
func IoU(a, b Box) float64 {
	ix1, iy1 := maxf(a.X1, b.X1), maxf(a.Y1, b.Y1)
	ix2, iy2 := minf(a.X2, b.X2), minf(a.Y2, b.Y2)
	iw, ih := ix2-ix1, iy2-iy1
	if !(iw > 0) || !(ih > 0) {
		return 0
	}
	inter := iw * ih
	union := a.Area() + b.Area() - inter
	if !(union > 0) {
		return 0
	}
	r := inter / union
	if math.IsNaN(r) || r < 0 {
		return 0
	}
	if r > 1 {
		return 1
	}
	return r
}

// Detection is one detector output: a box, a predicted class, and a
// confidence score in [0, 1].
type Detection struct {
	Box   Box
	Class int
	Score float64

	// GTIndex links the detection to the ground-truth object that produced
	// it in the behavioural detector (-1 for false positives). Evaluation
	// code must not read it; it exists for tracing and tests.
	GTIndex int
}

// GroundTruth is one annotated object.
type GroundTruth struct {
	Box   Box
	Class int
}

// byClassScore orders detections by (class ascending, score descending);
// byScore orders by score descending. Concrete sort.Interface types keep
// sort.Stable off the sort.Slice reflection path (reflectlite.Swapper
// allocated on every call in the detect hot loop).
type byClassScore []Detection

func (s byClassScore) Len() int      { return len(s) }
func (s byClassScore) Swap(i, j int) { s[i], s[j] = s[j], s[i] }
func (s byClassScore) Less(i, j int) bool {
	if s[i].Class != s[j].Class {
		return s[i].Class < s[j].Class
	}
	return s[i].Score > s[j].Score
}

type byScore []Detection

func (s byScore) Len() int           { return len(s) }
func (s byScore) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }
func (s byScore) Less(i, j int) bool { return s[i].Score > s[j].Score }

// NMS performs class-wise greedy non-maximum suppression with the given IoU
// threshold, returning at most topK detections sorted by descending score
// (topK ≤ 0 means unlimited). The paper uses threshold 0.3 and topK 300.
//
// One stable sort by (class, -score) replaces the historical
// group-by-class-map + sorted-class iteration + per-class stable score
// sort: grouping preserved the input's relative order within a class, so
// both arrangements list classes ascending with each class segment in
// stable descending-score order, and the greedy suppression — purely
// per-class — sees each segment in the identical order. The output is
// therefore unchanged, detection for detection.
func NMS(dets []Detection, iouThreshold float64, topK int) []Detection {
	return NMSAppend(nil, dets, iouThreshold, topK)
}

// nmsScratch holds NMS's working copy and suppression flags between calls;
// both are fully overwritten (copy / cleared re-slice) before use, so a
// recycled instance is indistinguishable from a fresh one.
type nmsScratch struct {
	work       []Detection
	suppressed []bool
}

var nmsScratchPool = sync.Pool{New: func() any { return new(nmsScratch) }}

// NMSAppend is NMS with caller-owned result storage: surviving detections
// are appended to dst (which may be nil) and the extended slice returned.
// Only the appended segment is ordered and truncated to topK; anything
// already in dst is left untouched. The internal working copy and
// suppression flags come from a pool, so a steady-state caller passing a
// recycled dst allocates nothing.
func NMSAppend(dst, dets []Detection, iouThreshold float64, topK int) []Detection {
	if len(dets) == 0 {
		return dst
	}
	sc := nmsScratchPool.Get().(*nmsScratch)
	if cap(sc.work) < len(dets) {
		sc.work = make([]Detection, len(dets))
		sc.suppressed = make([]bool, len(dets))
	}
	work := sc.work[:len(dets)]
	copy(work, dets)
	suppressed := sc.suppressed[:len(dets)]
	for i := range suppressed {
		suppressed[i] = false
	}
	sort.Stable(byClassScore(work))
	base := len(dst)
	kept := dst
	for lo := 0; lo < len(work); {
		hi := lo + 1
		for hi < len(work) && work[hi].Class == work[lo].Class {
			hi++
		}
		for i := lo; i < hi; i++ {
			if suppressed[i] {
				continue
			}
			kept = append(kept, work[i])
			for j := i + 1; j < hi; j++ {
				if !suppressed[j] && IoU(work[i].Box, work[j].Box) > iouThreshold {
					suppressed[j] = true
				}
			}
		}
		lo = hi
	}
	nmsScratchPool.Put(sc)
	sort.Stable(byScore(kept[base:]))
	if topK > 0 && len(kept)-base > topK {
		kept = kept[:base+topK]
	}
	return kept
}

// ForegroundIoU is the Jaccard threshold above which a predicted box is
// assigned to a ground-truth object (foreground), per the paper.
const ForegroundIoU = 0.5

// AssignForeground assigns each detection the index of the best-overlapping
// ground truth with IoU ≥ ForegroundIoU, or -1 for background. Class labels
// are not consulted: assignment is purely geometric, matching the loss
// convention of Eq. 1 where u is then read from the matched ground truth.
func AssignForeground(dets []Detection, gts []GroundTruth) []int {
	assign := make([]int, len(dets))
	for i, d := range dets {
		best, bestIoU := -1, ForegroundIoU
		for g, gt := range gts {
			if iou := IoU(d.Box, gt.Box); iou >= bestIoU {
				best, bestIoU = g, iou
			}
		}
		assign[i] = best
	}
	return assign
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
