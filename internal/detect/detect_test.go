package detect

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBoxGeometry(t *testing.T) {
	b := Box{X1: 10, Y1: 20, X2: 40, Y2: 80}
	if b.W() != 30 || b.H() != 60 || b.Area() != 1800 {
		t.Fatalf("W/H/Area = %v/%v/%v", b.W(), b.H(), b.Area())
	}
	cx, cy := b.Center()
	if cx != 25 || cy != 50 {
		t.Fatalf("Center = %v,%v", cx, cy)
	}
	if b.Shortest() != 30 {
		t.Fatalf("Shortest = %v", b.Shortest())
	}
	s := b.Scaled(0.5)
	if s.X1 != 5 || s.Y2 != 40 {
		t.Fatalf("Scaled = %v", s)
	}
	sh := b.Shifted(1, -2)
	if sh.X1 != 11 || sh.Y1 != 18 {
		t.Fatalf("Shifted = %v", sh)
	}
	deg := Box{X1: 5, Y1: 5, X2: 5, Y2: 10}
	if deg.W() != 0 || deg.Area() != 0 {
		t.Fatal("degenerate box must have zero width/area")
	}
}

func TestIoUKnownValues(t *testing.T) {
	a := Box{0, 0, 10, 10}
	if got := IoU(a, a); got != 1 {
		t.Fatalf("self IoU = %v", got)
	}
	b := Box{10, 10, 20, 20}
	if got := IoU(a, b); got != 0 {
		t.Fatalf("disjoint IoU = %v", got)
	}
	c := Box{5, 0, 15, 10} // overlap 50, union 150
	if got := IoU(a, c); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Fatalf("half-overlap IoU = %v", got)
	}
	if got := IoU(Box{}, a); got != 0 {
		t.Fatalf("degenerate IoU = %v", got)
	}
}

func randBox(rng *rand.Rand) Box {
	x1, y1 := rng.Float64()*100, rng.Float64()*100
	return Box{X1: x1, Y1: y1, X2: x1 + rng.Float64()*50 + 0.1, Y2: y1 + rng.Float64()*50 + 0.1}
}

// Properties: IoU is symmetric, bounded in [0,1], and 1 only for identical
// boxes (among non-degenerate boxes).
func TestIoUProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randBox(rng), randBox(rng)
		ab, ba := IoU(a, b), IoU(b, a)
		if ab != ba {
			return false
		}
		if ab < 0 || ab > 1 {
			return false
		}
		if IoU(a, a) != 1 {
			return false
		}
		// Shift far away → zero overlap.
		if IoU(a, b.Shifted(1000, 1000)) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: IoU is scale invariant — scaling both boxes by f preserves it.
func TestIoUScaleInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randBox(rng), randBox(rng)
		s := 0.1 + rng.Float64()*5
		return math.Abs(IoU(a, b)-IoU(a.Scaled(s), b.Scaled(s))) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNMSSuppressesOverlaps(t *testing.T) {
	dets := []Detection{
		{Box: Box{0, 0, 10, 10}, Class: 1, Score: 0.9},
		{Box: Box{1, 1, 11, 11}, Class: 1, Score: 0.8}, // overlaps the first
		{Box: Box{50, 50, 60, 60}, Class: 1, Score: 0.7},
	}
	out := NMS(dets, 0.3, 300)
	if len(out) != 2 {
		t.Fatalf("NMS kept %d, want 2", len(out))
	}
	if out[0].Score != 0.9 || out[1].Score != 0.7 {
		t.Fatalf("NMS kept wrong boxes: %+v", out)
	}
}

func TestNMSClassWise(t *testing.T) {
	dets := []Detection{
		{Box: Box{0, 0, 10, 10}, Class: 1, Score: 0.9},
		{Box: Box{0, 0, 10, 10}, Class: 2, Score: 0.8}, // same box, other class
	}
	out := NMS(dets, 0.3, 300)
	if len(out) != 2 {
		t.Fatalf("class-wise NMS must keep both, got %d", len(out))
	}
}

func TestNMSTopK(t *testing.T) {
	var dets []Detection
	for i := 0; i < 10; i++ {
		dets = append(dets, Detection{
			Box:   Box{float64(i * 100), 0, float64(i*100 + 10), 10},
			Class: 1, Score: float64(i) / 10,
		})
	}
	out := NMS(dets, 0.3, 3)
	if len(out) != 3 {
		t.Fatalf("topK kept %d", len(out))
	}
	if out[0].Score < out[1].Score || out[1].Score < out[2].Score {
		t.Fatal("NMS output must be sorted by descending score")
	}
	all := NMS(dets, 0.3, 0)
	if len(all) != 10 {
		t.Fatalf("topK<=0 must keep all, got %d", len(all))
	}
}

// Properties of NMS: output is a subset of input, no two kept same-class
// boxes overlap above the threshold, and the best-scoring box always
// survives.
func TestNMSInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		dets := make([]Detection, n)
		for i := range dets {
			dets[i] = Detection{Box: randBox(rng), Class: rng.Intn(3), Score: rng.Float64()}
		}
		thr := 0.2 + rng.Float64()*0.6
		out := NMS(dets, thr, 0)
		if len(out) > n {
			return false
		}
		for i := range out {
			for j := i + 1; j < len(out); j++ {
				if out[i].Class == out[j].Class && IoU(out[i].Box, out[j].Box) > thr {
					return false
				}
			}
		}
		best := 0
		for i := range dets {
			if dets[i].Score > dets[best].Score {
				best = i
			}
		}
		found := false
		for _, d := range out {
			if d.Box == dets[best].Box && d.Score == dets[best].Score {
				found = true
			}
		}
		return found
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAssignForeground(t *testing.T) {
	gts := []GroundTruth{
		{Box: Box{0, 0, 10, 10}, Class: 1},
		{Box: Box{100, 100, 120, 120}, Class: 2},
	}
	dets := []Detection{
		{Box: Box{0, 0, 10, 10}, Class: 1, Score: 0.9},       // exact match → gt 0
		{Box: Box{101, 101, 121, 121}, Class: 2, Score: 0.8}, // near match → gt 1
		{Box: Box{500, 500, 510, 510}, Class: 1, Score: 0.7}, // background
		{Box: Box{0, 0, 40, 40}, Class: 1, Score: 0.6},       // IoU 100/1600 < 0.5 → background
	}
	got := AssignForeground(dets, gts)
	want := []int{0, 1, -1, -1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("assign[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestAssignForegroundPicksBestOverlap(t *testing.T) {
	gts := []GroundTruth{
		{Box: Box{0, 0, 10, 10}},
		{Box: Box{2, 2, 12, 12}},
	}
	det := []Detection{{Box: Box{2, 2, 11, 11}}}
	got := AssignForeground(det, gts)
	if got[0] != 1 {
		t.Fatalf("expected assignment to the higher-IoU gt, got %d", got[0])
	}
}

func TestAssignForegroundEmpty(t *testing.T) {
	if got := AssignForeground(nil, nil); len(got) != 0 {
		t.Fatal("empty inputs must give empty output")
	}
	got := AssignForeground([]Detection{{Box: Box{0, 0, 1, 1}}}, nil)
	if got[0] != -1 {
		t.Fatal("no ground truth → background")
	}
}
