package detect

import (
	"encoding/binary"
	"math"
	"testing"
)

// decodeBoxes deserialises an arbitrary byte stream into detections, eight
// bytes per float field so the fuzzer can reach every bit pattern —
// including NaN, ±Inf, subnormals and inverted (x2 < x1) boxes.
func decodeBoxes(data []byte) []Detection {
	const fields = 6 // x1 y1 x2 y2 score class
	n := len(data) / (8 * fields)
	if n > 512 {
		n = 512 // bound the work, not the value space
	}
	dets := make([]Detection, 0, n)
	f := func(i int) float64 {
		return math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
	}
	for k := 0; k < n; k++ {
		base := k * fields
		dets = append(dets, Detection{
			Box:   Box{X1: f(base), Y1: f(base + 1), X2: f(base + 2), Y2: f(base + 3)},
			Score: f(base + 4),
			Class: int(int16(binary.LittleEndian.Uint16(data[(base+5)*8:]))),
		})
	}
	return dets
}

// FuzzNMS asserts NMS never panics and keeps its output contract on fully
// degenerate inputs: NaN/Inf coordinates and scores, inverted and
// zero-area boxes, negative classes, hostile thresholds.
func FuzzNMS(f *testing.F) {
	f.Add([]byte{}, 0.3, 300)
	f.Add(make([]byte, 8*6*3), 0.3, 300)
	nan := make([]byte, 8*6*2)
	for i := 0; i < len(nan); i += 8 {
		binary.LittleEndian.PutUint64(nan[i:], 0x7ff8000000000001) // NaN
	}
	f.Add(nan, math.Inf(1), -1)
	f.Add([]byte("degenerate boxes are still boxes....................."), -0.5, 0)

	f.Fuzz(func(t *testing.T, data []byte, iouThreshold float64, topK int) {
		dets := decodeBoxes(data)
		kept := NMS(dets, iouThreshold, topK)
		if len(kept) > len(dets) {
			t.Fatalf("NMS invented detections: %d in, %d out", len(dets), len(kept))
		}
		if topK > 0 && len(kept) > topK {
			t.Fatalf("NMS kept %d > topK %d", len(kept), topK)
		}
		for _, d := range kept {
			if v := IoU(d.Box, d.Box); v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("IoU self-overlap out of [0,1]: %v for %v", v, d.Box)
			}
		}
	})
}
