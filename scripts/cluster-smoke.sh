#!/bin/sh
# Cluster smoke gate: a 1000-stream load sharded across a 4-node simulated
# fleet under a seeded cluster event plan (node joins, graceful leaves,
# blackouts forcing cross-node failover, stream migrations), executed twice
# under the race detector — the second time with real parallelism pinned to
# one CPU. The -smoke flag makes each run exit non-zero unless the
# conservation identity holds: offered = served + dropped with lost=0 and
# at least one node standing. This script additionally requires the two
# runs' stdout (the cluster report and the merged metrics snapshot) to be
# byte-identical, which is the cluster simulator's determinism contract:
# sharding, placement, failover and autoscale all live on the virtual
# clock, so neither the run nor the machine's core count may leak into the
# output. Model-only serving keeps the 1k-stream fleet to seconds; queue
# dynamics, drops and recovery are exactly the full run's.
set -eu
cd "$(dirname "$0")/.."

FLAGS="-cluster -nodes 4 -streams 1000 -frames 4 -rate 10 -train 8 -val 4 \
	-workers 4 -seed 5 -slo-ms 80 -queue 4 -chaos 2 -model-only -smoke"

out1=$(mktemp) || exit 1
out2=$(mktemp) || exit 1
trap 'rm -f "$out1" "$out2"' EXIT

echo "== cluster run 1 (default parallelism)"
go run -race ./cmd/adascale-serve $FLAGS >"$out1"

echo "== cluster run 2 (GOMAXPROCS=1)"
GOMAXPROCS=1 go run -race ./cmd/adascale-serve $FLAGS >"$out2"

if ! cmp -s "$out1" "$out2"; then
	echo "cluster-smoke: output diverged between runs/core counts:" >&2
	diff "$out1" "$out2" >&2 || true
	exit 1
fi
echo "cluster smoke: byte-identical across runs and core counts"
