#!/bin/sh
# Chaos smoke gate: a short deterministic chaos run — seeded worker
# kills/stalls, a node blackout and a queue-saturation window on top of a
# loaded serve — executed twice under the race detector, the second time
# with real parallelism pinned to one CPU. The -smoke flag makes each run
# exit non-zero on any lost stream or lost frame; this script additionally
# requires the two runs' stdout (every tick and the final metrics
# snapshot) to be byte-identical, which is the serving supervisor's
# determinism contract: recovery decisions live on the virtual clock, so
# neither the run nor the machine's core count may leak into the output.
set -eu
cd "$(dirname "$0")/.."

FLAGS="-streams 3 -frames 15 -rate 20 -train 8 -val 4 -workers 2 -seed 5 \
	-slo-ms 50 -tick-ms 0 -chaos 1 -smoke"

out1=$(mktemp) || exit 1
out2=$(mktemp) || exit 1
trap 'rm -f "$out1" "$out2"' EXIT

echo "== chaos run 1 (default parallelism)"
go run -race ./cmd/adascale-serve $FLAGS >"$out1"

echo "== chaos run 2 (GOMAXPROCS=1)"
GOMAXPROCS=1 go run -race ./cmd/adascale-serve $FLAGS >"$out2"

if ! cmp -s "$out1" "$out2"; then
	echo "chaos-smoke: output diverged between runs/core counts:" >&2
	diff "$out1" "$out2" >&2 || true
	exit 1
fi
echo "chaos smoke: byte-identical across runs and core counts"
