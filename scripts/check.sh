#!/bin/sh
# Tier-1 gate (same contract as `make check`): gofmt cleanliness, vet,
# build, and the full test suite under the race detector. The race run
# matters because RunDataset, label generation and snippet synthesis all
# fan out across the worker pool by default.
#
# Locally the gate fails fast: the first broken gate stops the run.
# In CI mode (-ci flag or CHECK_CI_MODE=1, the mode `make ci` and the
# GitHub workflow use) every gate runs even after a failure so one push
# reports all breakage at once, each failure is emitted as a GitHub
# Actions error annotation (::error ...), and the script exits non-zero
# at the end if anything failed.
set -u
cd "$(dirname "$0")/.."

# Gate commands are piped through annotators in some CI setups; without
# pipefail a failing gate upstream of a pipe reads as success. POSIX sh
# does not mandate the option, so probe in a subshell first.
if (set -o pipefail) 2>/dev/null; then set -o pipefail; fi

ci=0
[ "${CHECK_CI_MODE:-0}" = "1" ] && ci=1
[ "${1:-}" = "-ci" ] && ci=1

fails=0
failed() { # failed <gate> <message>
	fails=$((fails + 1))
	if [ "$ci" = 1 ]; then
		echo "::error title=${1}::${2}"
	else
		echo "check.sh: $1 failed: $2" >&2
		exit 1
	fi
}

gate() { # gate <name> <command...>
	name=$1
	shift
	echo "== $name"
	"$@" || failed "$name" "$* (exit $?)"
}

# gofmt reports per file so CI annotates each unformatted file in place.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	if [ "$ci" = 1 ]; then
		for f in $unformatted; do
			echo "::error file=${f}::gofmt needed"
		done
		fails=$((fails + 1))
	else
		echo "gofmt needed on:"
		echo "$unformatted"
		exit 1
	fi
fi

gate "go-vet" go vet ./...
gate "go-build" go build ./...
# -timeout covers the heavy experiment harnesses on small machines: the
# race detector slows the regressor-training loops by ~10x. -shuffle=on
# randomizes test order within each package so leaked package-level state
# (e.g. a SetWorkers override surviving a t.Fatal) fails loudly instead
# of depending on declaration order.
gate "go-test-race" go test -race -shuffle=on -timeout 60m ./...

# Brief randomized fuzzing on top of the committed seed corpus — the NMS
# and evaluator harnesses must hold on degenerate boxes (NaN/Inf
# coordinates, out-of-range classes) far beyond what the unit tests pin.
gate "fuzz-nms" go test -run='^$' -fuzz='^FuzzNMS$' -fuzztime=5s ./internal/detect
gate "fuzz-evaluate" go test -run='^$' -fuzz='^FuzzEvaluate$' -fuzztime=5s ./internal/eval
gate "fuzz-loadgen" go test -run='^$' -fuzz='^FuzzLoadgen$' -fuzztime=5s ./internal/serve
gate "fuzz-ingest" go test -run='^$' -fuzz='^FuzzIngestDecode$' -fuzztime=5s ./internal/server
gate "fuzz-cluster" go test -run='^$' -fuzz='^FuzzClusterEvents$' -fuzztime=5s ./internal/cluster

# End-to-end serving gate under the race detector: 200 simulated frames
# across 4 streams at an unloaded rate must serve with zero drops and a
# non-empty metrics snapshot (-smoke exits non-zero otherwise).
gate "serve-smoke" go run -race ./cmd/adascale-serve -streams 4 -frames 50 -rate 5 \
	-slo-ms 0 -tick-ms 0 -train 8 -val 4 -workers 4 -seed 5 -smoke

# Fault-tolerance gate: a seeded chaos run (worker kills/stalls, node
# blackout, queue saturation) under the race detector, twice — once at
# default parallelism, once at GOMAXPROCS=1 — asserting zero lost
# streams/frames and byte-identical output across the two runs.
gate "chaos-smoke" ./scripts/chaos-smoke.sh

# Batching gate: a loaded multi-stream serve with -batch 8 under the race
# detector, asserting zero loss, byte-identical output across core counts,
# and — after stripping the batch/* occupancy keys — byte-identical output
# and metrics against the same run with batching off.
gate "batch-smoke" ./scripts/batch-smoke.sh

# HTTP transport gate: boot the network serving mode on an ephemeral port
# under the race detector, drive the API with curl (admission quotas,
# typed 400s, ingestion, results, Prometheus /metrics), then SIGTERM and
# require a graceful drain with zero admitted-frame loss.
gate "http-smoke" ./scripts/http-smoke.sh

# Cluster-scale gate: a 1k-stream / 4-node model-only cluster simulation
# under the race detector, twice — asserting zero lost frames through
# sharding, blackout failover and migration, and byte-identical reports
# across the two runs.
gate "cluster-smoke" ./scripts/cluster-smoke.sh

# Benchmark-report gates: the diff tool must localise a synthetic
# single-stage regression (its self-validation), and the committed
# baseline must parse, carry a known schema, and self-compare clean.
gate "benchdiff-selftest" ./scripts/benchdiff.sh -selftest
gate "benchdiff-baseline" ./scripts/benchdiff.sh BENCH_4.json BENCH_4.json

if [ "$fails" -gt 0 ]; then
	echo "tier-1 gate: $fails gate(s) FAILED" >&2
	exit 1
fi
echo "tier-1 gate: OK"
