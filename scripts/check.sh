#!/bin/sh
# Tier-1 gate (same contract as `make check`): gofmt cleanliness, vet,
# build, and the full test suite under the race detector. The race run
# matters because RunDataset, label generation and snippet synthesis all
# fan out across the worker pool by default.
set -eu
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	exit 1
fi

go vet ./...
go build ./...
# -timeout covers the heavy experiment harnesses on small machines: the
# race detector slows the regressor-training loops by ~10x. -shuffle=on
# randomizes test order within each package so leaked package-level state
# (e.g. a SetWorkers override surviving a t.Fatal) fails loudly instead
# of depending on declaration order.
go test -race -shuffle=on -timeout 60m ./...

# Brief randomized fuzzing on top of the committed seed corpus — the NMS
# and evaluator harnesses must hold on degenerate boxes (NaN/Inf
# coordinates, out-of-range classes) far beyond what the unit tests pin.
go test -run='^$' -fuzz='^FuzzNMS$' -fuzztime=5s ./internal/detect
go test -run='^$' -fuzz='^FuzzEvaluate$' -fuzztime=5s ./internal/eval
go test -run='^$' -fuzz='^FuzzLoadgen$' -fuzztime=5s ./internal/serve

# End-to-end serving gate under the race detector: 200 simulated frames
# across 4 streams at an unloaded rate must serve with zero drops and a
# non-empty metrics snapshot (-smoke exits non-zero otherwise).
go run -race ./cmd/adascale-serve -streams 4 -frames 50 -rate 5 \
	-slo-ms 0 -tick-ms 0 -train 8 -val 4 -workers 4 -seed 5 -smoke

# Benchmark-report gate: the committed baseline must parse, carry a known
# schema, and self-compare clean (zero regressions).
./scripts/benchdiff.sh BENCH_4.json BENCH_4.json
echo "tier-1 gate: OK"
