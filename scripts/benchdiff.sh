#!/bin/sh
# benchdiff.sh — compare two adascale-bench JSON reports and fail on
# regression. A regression is a ns/op increase beyond the tolerance
# (default 25%, trailing argument) on the total OR on any single pipeline
# stage (schema v2 localises time regressions to decode/rescale/detect/
# regress/seqnms), an allocs/op increase beyond 10% on the total or any
# stage (schema v3 apportions allocations the same way), or ANY decrease
# of a guarded accuracy metric ("map"-prefixed keys); entries or guarded
# metrics present in the baseline but missing from the candidate also
# fail (lost coverage).
#
# Usage:
#   scripts/benchdiff.sh [-accuracy-only] baseline.json candidate.json [max-time-regress-pct]
#   scripts/benchdiff.sh -selftest
#
# Reports measured on different machines refuse to compare (exit 2) —
# wall-clock across machines is meaningless. Either pass -accuracy-only
# to gate only on the deterministic accuracy metrics (how CI compares a
# fresh run against the committed baseline), or regenerate the baseline
# on this machine and commit it:
#
#   go run ./cmd/adascale-bench -train 16 -val 8 -seed 5 -json BENCH_4.json
#
# -selftest validates the gate itself: it synthesises a candidate whose
# total ns/op is within tolerance but whose detect stage grew 80%, and
# asserts the diff flags exactly that stage; then a candidate whose total
# allocs/op is within tolerance but whose detect stage doubled its
# allocations, and asserts the alloc gate flags that stage too; then the
# same detect-stage alloc double on a "batching"-named entry — the shape
# a broken batch dispatch path would print — and asserts the failure
# names both the entry and the stage, and that the non-zero exit
# survives being piped into a consumer.
set -eu
cd "$(dirname "$0")/.."

# Gate output is routinely piped (tee/tail in CI); without pipefail the
# pipe's exit code is the consumer's and a failed diff reads as success.
# POSIX sh does not mandate the option, so probe in a subshell first.
if (set -o pipefail) 2>/dev/null; then set -o pipefail; fi

accuracy=""
if [ "${1:-}" = "-accuracy-only" ]; then
	accuracy="-accuracy-only"
	shift
fi

if [ "${1:-}" = "-selftest" ]; then
	tmp=$(mktemp -d)
	trap 'rm -rf "$tmp"' EXIT
	machine='{"go_version":"go0.0","goos":"linux","goarch":"amd64","num_cpu":1,"gomaxprocs":1}'
	cat >"$tmp/base.json" <<EOF
{"schema":2,"machine":$machine,"entries":[{"name":"selftest","ns_per_op":1000,"allocs_per_op":1,"iters":1,"metrics":{"map/selftest":0.5},"stages_ns_per_op":{"decode":100,"detect":500,"regress":50}}]}
EOF
	cat >"$tmp/cand.json" <<EOF
{"schema":2,"machine":$machine,"entries":[{"name":"selftest","ns_per_op":1050,"allocs_per_op":1,"iters":1,"metrics":{"map/selftest":0.5},"stages_ns_per_op":{"decode":100,"detect":900,"regress":50}}]}
EOF
	# The baseline must self-compare clean...
	go run ./cmd/adascale-bench -diff "$tmp/base.json" -diff-to "$tmp/base.json" >/dev/null
	# ...and the single-stage regression must be flagged and localised.
	if go run ./cmd/adascale-bench -diff "$tmp/base.json" -diff-to "$tmp/cand.json" >/dev/null 2>"$tmp/err"; then
		echo "benchdiff selftest: stage regression NOT flagged" >&2
		exit 1
	fi
	if ! grep -q "stage detect" "$tmp/err"; then
		echo "benchdiff selftest: regression not localised to the detect stage; got:" >&2
		cat "$tmp/err" >&2
		exit 1
	fi
	# Allocation gate (schema v3): total allocs within the 10% tolerance,
	# detect-stage allocations doubled — must fail and name the stage.
	cat >"$tmp/abase.json" <<EOF
{"schema":3,"machine":$machine,"entries":[{"name":"selftest","ns_per_op":1000,"allocs_per_op":1000,"iters":1,"metrics":{"map/selftest":0.5},"stages_ns_per_op":{"decode":100,"detect":500,"regress":50},"stages_allocs_per_op":{"decode":100,"detect":500,"regress":50}}]}
EOF
	cat >"$tmp/acand.json" <<EOF
{"schema":3,"machine":$machine,"entries":[{"name":"selftest","ns_per_op":1000,"allocs_per_op":1050,"iters":1,"metrics":{"map/selftest":0.5},"stages_ns_per_op":{"decode":100,"detect":500,"regress":50},"stages_allocs_per_op":{"decode":100,"detect":1000,"regress":50}}]}
EOF
	go run ./cmd/adascale-bench -diff "$tmp/abase.json" -diff-to "$tmp/abase.json" >/dev/null
	if go run ./cmd/adascale-bench -diff "$tmp/abase.json" -diff-to "$tmp/acand.json" >/dev/null 2>"$tmp/aerr"; then
		echo "benchdiff selftest: alloc regression NOT flagged" >&2
		exit 1
	fi
	if ! grep -q "alloc regression: stage detect" "$tmp/aerr"; then
		echo "benchdiff selftest: alloc regression not localised to the detect stage; got:" >&2
		cat "$tmp/aerr" >&2
		exit 1
	fi
	# Serving entries get the same localisation: a "batching"-named entry
	# whose total allocations sit inside the 10% tolerance but whose
	# detect stage doubled must fail, naming the entry and the stage —
	# this is the gate that catches a batch dispatch path quietly
	# re-allocating per frame what it should reuse per batch.
	cat >"$tmp/bbase.json" <<EOF
{"schema":3,"machine":$machine,"entries":[{"name":"batching","ns_per_op":1000,"allocs_per_op":1000,"iters":1,"metrics":{"map/batching":0.5},"stages_ns_per_op":{"decode":100,"detect":500,"regress":50},"stages_allocs_per_op":{"decode":100,"detect":500,"regress":50}}]}
EOF
	cat >"$tmp/bcand.json" <<EOF
{"schema":3,"machine":$machine,"entries":[{"name":"batching","ns_per_op":1000,"allocs_per_op":1050,"iters":1,"metrics":{"map/batching":0.5},"stages_ns_per_op":{"decode":100,"detect":500,"regress":50},"stages_allocs_per_op":{"decode":100,"detect":1000,"regress":50}}]}
EOF
	go run ./cmd/adascale-bench -diff "$tmp/bbase.json" -diff-to "$tmp/bbase.json" >/dev/null
	if go run ./cmd/adascale-bench -diff "$tmp/bbase.json" -diff-to "$tmp/bcand.json" >/dev/null 2>"$tmp/berr"; then
		echo "benchdiff selftest: batching-entry alloc regression NOT flagged" >&2
		exit 1
	fi
	if ! grep -q "batching: alloc regression: stage detect" "$tmp/berr"; then
		echo "benchdiff selftest: batching alloc regression not localised to entry+stage; got:" >&2
		cat "$tmp/berr" >&2
		exit 1
	fi
	# Exit-code path through a pipe: the same failing diff piped into a
	# consumer must still exit non-zero wherever pipefail is available
	# (the guard above; skipped silently on shells without the option).
	if (set -o pipefail) 2>/dev/null; then
		if (set -o pipefail; go run ./cmd/adascale-bench -diff "$tmp/bbase.json" -diff-to "$tmp/bcand.json" 2>/dev/null | tail -n 1 >/dev/null); then
			echo "benchdiff selftest: failing diff exit code lost through a pipe" >&2
			exit 1
		fi
	fi
	echo "benchdiff selftest: OK — stage time and stage alloc regressions localised (incl. batching entry), exit codes survive pipes"
	exit 0
fi

if [ "$#" -lt 2 ]; then
	echo "usage: $0 [-accuracy-only] baseline.json candidate.json [max-time-regress-pct]" >&2
	echo "       $0 -selftest" >&2
	exit 2
fi
pct=${3:-25}

exec go run ./cmd/adascale-bench -diff "$1" -diff-to "$2" -max-time-regress "$pct" $accuracy
