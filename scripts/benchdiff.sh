#!/bin/sh
# benchdiff.sh — compare two adascale-bench JSON reports and fail on
# regression. A regression is a ns/op increase beyond the tolerance
# (default 25%, third argument) or ANY decrease of a guarded accuracy
# metric ("map"-prefixed keys); entries or guarded metrics present in the
# baseline but missing from the candidate also fail (lost coverage).
#
# Usage: scripts/benchdiff.sh baseline.json candidate.json [max-time-regress-pct]
#
# Generate a candidate with:
#   go run ./cmd/adascale-bench -train 16 -val 8 -seed 5 -json candidate.json
set -eu
cd "$(dirname "$0")/.."

if [ "$#" -lt 2 ]; then
	echo "usage: $0 baseline.json candidate.json [max-time-regress-pct]" >&2
	exit 2
fi
pct=${3:-25}

exec go run ./cmd/adascale-bench -diff "$1" -diff-to "$2" -max-time-regress "$pct"
