#!/bin/sh
# Batching smoke gate: a loaded multi-stream serve with cross-stream
# detector batching on (-batch 8), run under the race detector. Three
# assertions, which together are the batching determinism contract
# (DESIGN.md §4k):
#
#   1. The batched run itself passes -smoke (zero lost streams/frames) —
#      batching never loses work, even when a batch-mate panics.
#   2. Its stdout is byte-identical across GOMAXPROCS values: batch
#      flushes are driven by virtual-clock events, so real parallelism
#      must not leak into outputs, ticks, or even the batch/* occupancy
#      metrics.
#   3. After stripping the batch/* metric lines — the only keys batching
#      may add — the snapshot and every output are byte-identical to the
#      same run with -batch 1: batching changes wall-clock compute and
#      nothing else.
set -eu
cd "$(dirname "$0")/.."

# Loaded rate so frames genuinely overlap in flight (idle streams have
# nothing to coalesce), with a queue deep enough that the backlog waits
# instead of dropping — -smoke requires every offered frame served.
FLAGS="-streams 6 -frames 12 -rate 30 -train 8 -val 4 -workers 4 -seed 5 \
	-queue 80 -slo-ms 0 -tick-ms 0 -smoke"

out_b8=$(mktemp) || exit 1
out_b8_p1=$(mktemp) || exit 1
out_b1=$(mktemp) || exit 1
trap 'rm -f "$out_b8" "$out_b8_p1" "$out_b1"' EXIT

# The batch/* metric lines are "<kind> batch/<name> <value...>"; the
# second field carries the key, so match on it rather than the raw line.
strip_batch() { awk '$2 !~ /^batch\//' "$1"; }

echo "== batch run 1 (-batch 8, default parallelism)"
go run -race ./cmd/adascale-serve $FLAGS -batch 8 >"$out_b8"

echo "== batch run 2 (-batch 8, GOMAXPROCS=1)"
GOMAXPROCS=1 go run -race ./cmd/adascale-serve $FLAGS -batch 8 >"$out_b8_p1"

if ! cmp -s "$out_b8" "$out_b8_p1"; then
	echo "batch-smoke: -batch 8 output diverged across core counts:" >&2
	diff "$out_b8" "$out_b8_p1" >&2 || true
	exit 1
fi

echo "== baseline run (-batch 1)"
go run -race ./cmd/adascale-serve $FLAGS -batch 1 >"$out_b1"

s8=$(mktemp) || exit 1
s1=$(mktemp) || exit 1
trap 'rm -f "$out_b8" "$out_b8_p1" "$out_b1" "$s8" "$s1"' EXIT
strip_batch "$out_b8" >"$s8"
strip_batch "$out_b1" >"$s1"
if ! cmp -s "$s8" "$s1"; then
	echo "batch-smoke: -batch 8 diverged from -batch 1 beyond batch/* keys:" >&2
	diff "$s1" "$s8" >&2 || true
	exit 1
fi

if ! grep -q 'batch/flushes' "$out_b8"; then
	echo "batch-smoke: -batch 8 run never flushed a batch (no batch/flushes metric)" >&2
	exit 1
fi
echo "batch smoke: identical outputs at -batch 8 vs -batch 1, stable across core counts"
