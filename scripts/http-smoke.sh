#!/bin/sh
# HTTP serving smoke gate: boot adascale-serve -http on an ephemeral port
# under the race detector, drive the whole API surface with curl — health
# probes, stream admission, frame ingestion, result polling, a Prometheus
# scrape — then send SIGTERM and require a graceful drain: the process must
# exit zero and report `lost=0` (offered == served + dropped held through
# shutdown), with /readyz flipping to 503 while results stay readable.
set -eu
cd "$(dirname "$0")/.."

PORTLOG=$(mktemp) || exit 1
BODY=$(mktemp) || exit 1
SRVPID=""
cleanup() {
	[ -n "$SRVPID" ] && kill "$SRVPID" 2>/dev/null || true
	rm -f "$PORTLOG" "$BODY"
}
trap cleanup EXIT

echo "== build + start server"
go build -race -o /tmp/adascale-serve-smoke ./cmd/adascale-serve
/tmp/adascale-serve-smoke -http 127.0.0.1:0 -train 6 -val 3 -workers 2 \
	-seed 5 -slo-ms 200 -queue 4 -tenant-streams 2 >"$PORTLOG" &
SRVPID=$!

# The training run takes a few seconds; wait for the listening line.
ADDR=""
for _ in $(seq 1 120); do
	ADDR=$(sed -n 's/^http: listening on //p' "$PORTLOG")
	[ -n "$ADDR" ] && break
	kill -0 "$SRVPID" 2>/dev/null || { echo "http-smoke: server died during startup" >&2; cat "$PORTLOG" >&2; exit 1; }
	sleep 0.5
done
[ -n "$ADDR" ] || { echo "http-smoke: server never listened" >&2; cat "$PORTLOG" >&2; exit 1; }
BASE="http://$ADDR"
echo "== server at $BASE"

req() { # req <expected-status> <curl args...>
	want=$1
	shift
	got=$(curl -s -o "$BODY" -w '%{http_code}' "$@")
	if [ "$got" != "$want" ]; then
		echo "http-smoke: $* -> $got, want $want" >&2
		cat "$BODY" >&2
		exit 1
	fi
}

echo "== probes"
req 200 "$BASE/healthz"
req 200 "$BASE/readyz"

echo "== admission"
req 201 -X POST -H 'X-Tenant: cam' -d '{"tenant":"cam","slo_ms":200}' "$BASE/v1/streams"
grep -q '"stream_id":0' "$BODY" || { echo "http-smoke: bad admit reply" >&2; cat "$BODY" >&2; exit 1; }
# Quota: third stream for the same tenant must be a 429.
req 201 -X POST -H 'X-Tenant: cam' -d '{"tenant":"cam"}' "$BASE/v1/streams"
req 429 -X POST -H 'X-Tenant: cam' -d '{"tenant":"cam"}' "$BASE/v1/streams"
# Typed 400s: empty tenant, malformed frame.
req 400 -X POST -d '{"tenant":""}' "$BASE/v1/streams"
req 400 -X POST -H 'X-Tenant: cam' -d '{"frames":[{"w":1,"h":1}]}' "$BASE/v1/streams/0/frames"
req 404 -X POST -H 'X-Tenant: cam' -d '{"frames":[{"w":64,"h":64}]}' "$BASE/v1/streams/99/frames"

echo "== ingestion"
req 202 -X POST -H 'X-Tenant: cam' \
	-d '{"frames":[{"w":320,"h":240,"objects":[{"id":1,"class":2,"x1":30,"y1":30,"x2":120,"y2":130}]},{"w":320,"h":240}]}' \
	"$BASE/v1/streams/0/frames"
grep -q '"accepted":2' "$BODY" || { echo "http-smoke: bad ingest reply" >&2; cat "$BODY" >&2; exit 1; }

echo "== results"
# Poll until the async consumer has served both frames.
served=""
for _ in $(seq 1 100); do
	req 200 "$BASE/v1/streams/0/results"
	if grep -q '"served":2' "$BODY"; then served=2; break; fi
	sleep 0.1
done
[ -n "$served" ] || { echo "http-smoke: frames never served" >&2; cat "$BODY" >&2; exit 1; }
grep -q '"scale":' "$BODY" || { echo "http-smoke: results carry no scales" >&2; cat "$BODY" >&2; exit 1; }

echo "== metrics"
req 200 "$BASE/metrics"
grep -q '^# TYPE adascale_frames_served counter$' "$BODY" || {
	echo "http-smoke: /metrics missing frames_served TYPE line" >&2; cat "$BODY" >&2; exit 1; }
grep -q '^adascale_frames_served 2$' "$BODY" || {
	echo "http-smoke: /metrics frames_served != 2" >&2; cat "$BODY" >&2; exit 1; }
grep -q 'adascale_latency_ms{quantile="0.99"}' "$BODY" || {
	echo "http-smoke: /metrics missing latency summary" >&2; cat "$BODY" >&2; exit 1; }

echo "== graceful drain"
kill -TERM "$SRVPID"
EXIT=0
wait "$SRVPID" || EXIT=$?
SRVPID=""
if [ "$EXIT" != 0 ]; then
	echo "http-smoke: server exited $EXIT after SIGTERM" >&2
	cat "$PORTLOG" >&2
	exit 1
fi
grep -q '^drain: .* lost=0$' "$PORTLOG" || {
	echo "http-smoke: drain accounting line missing or lossy" >&2; cat "$PORTLOG" >&2; exit 1; }
grep -q '^counter frames/served' "$PORTLOG" || {
	echo "http-smoke: final snapshot missing" >&2; cat "$PORTLOG" >&2; exit 1; }
echo "http smoke: OK (drained with zero admitted-frame loss)"
