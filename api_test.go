package adascale_test

import (
	"math/rand"
	"testing"

	"adascale"
)

// TestPublicAPIEndToEnd drives the documented public surface: generate,
// build, run every protocol, evaluate — the quickstart contract.
func TestPublicAPIEndToEnd(t *testing.T) {
	cfg := adascale.VIDLike(9)
	cfg.FramesPerSnippet = 4
	ds, err := adascale.Generate(cfg, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	sys := adascale.Build(ds, adascale.DefaultBuildConfig())
	if sys.Detector == nil || sys.Regressor == nil {
		t.Fatal("Build returned an incomplete system")
	}

	adascale.SetWorkers(3)
	t.Cleanup(func() { adascale.SetWorkers(0) })
	if got := adascale.Workers(); got != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", got)
	}
	outs := adascale.RunDataset(ds.Val, adascale.AdaScaleRunner(sys.Detector, sys.Regressor))
	adascale.SetWorkers(0)
	if len(outs) != 3*4 {
		t.Fatalf("outputs = %d", len(outs))
	}
	serial := adascale.RunDatasetSerial(ds.Val, adascale.AdaScaleRunner(sys.Detector, sys.Regressor)())
	if len(serial) != len(outs) {
		t.Fatalf("serial %d vs parallel %d outputs", len(serial), len(outs))
	}
	for i := range outs {
		if outs[i].Scale != serial[i].Scale {
			t.Fatalf("output %d: parallel scale %d, serial %d", i, outs[i].Scale, serial[i].Scale)
		}
	}
	res := adascale.Evaluate(adascale.ToEval(outs), len(cfg.Classes))
	if res.MAP < 0 || res.MAP > 1 {
		t.Fatalf("mAP %v out of range", res.MAP)
	}
	if adascale.MeanRuntimeMS(outs) <= 0 || adascale.MeanScale(outs) <= 0 {
		t.Fatal("degenerate runtime accounting")
	}

	// Other protocols are reachable and well-formed.
	ssDet := adascale.NewSSDetector(&ds.Config)
	if len(adascale.RunFixed(ssDet, &ds.Val[0], 600)) != 4 {
		t.Fatal("RunFixed broken")
	}
	if len(adascale.RunRandom(sys.Detector, &ds.Val[0], adascale.SReg(), rand.New(rand.NewSource(1)))) != 4 {
		t.Fatal("RunRandom broken")
	}
	if len(adascale.RunMultiShot(sys.Detector, &ds.Val[0], []int{600, 360})) != 4 {
		t.Fatal("RunMultiShot broken")
	}
	if len(adascale.RunDFF(sys.Detector, &ds.Val[0], 600, adascale.DefaultDFFConfig())) != 4 {
		t.Fatal("RunDFF broken")
	}
	if len(adascale.RunDFFAdaptive(sys.Detector, sys.Regressor, &ds.Val[0], adascale.DefaultDFFConfig())) != 4 {
		t.Fatal("RunDFFAdaptive broken")
	}
	frames := [][]adascale.Detection{{{Box: adascale.Box{X1: 0, Y1: 0, X2: 10, Y2: 10}, Class: 0, Score: 0.5}}}
	if got := adascale.ApplySeqNMS(frames, adascale.SeqNMSOptions{}); len(got) != 1 {
		t.Fatal("ApplySeqNMS broken")
	}
}

// TestEncodeDecodePublic checks the Eq. 3 helpers exported at the root.
func TestEncodeDecodePublic(t *testing.T) {
	for _, m := range []int{128, 240, 360, 480, 600} {
		for _, mOpt := range []int{128, 240, 360, 480, 600} {
			if got := adascale.DecodeScale(adascale.EncodeTarget(m, mOpt), m); got != mOpt {
				t.Fatalf("round trip (%d,%d) -> %d", m, mOpt, got)
			}
		}
	}
}

// TestIoUNMSPublic sanity-checks the exported geometry helpers.
func TestIoUNMSPublic(t *testing.T) {
	a := adascale.Box{X1: 0, Y1: 0, X2: 10, Y2: 10}
	if adascale.IoU(a, a) != 1 {
		t.Fatal("IoU broken")
	}
	dets := []adascale.Detection{
		{Box: a, Class: 0, Score: 0.9},
		{Box: adascale.Box{X1: 1, Y1: 1, X2: 11, Y2: 11}, Class: 0, Score: 0.5},
	}
	if got := adascale.NMS(dets, 0.3, 10); len(got) != 1 {
		t.Fatalf("NMS kept %d", len(got))
	}
}

// TestClusterPublicAPI drives the cluster-scale surface exported at the
// root: build a ring, generate and decode event plans, and run a small
// sharded fleet that must conserve every offered frame.
func TestClusterPublicAPI(t *testing.T) {
	ring := adascale.NewClusterRing(adascale.ClusterRingConfig{Seed: 7})
	ring.Add(0)
	ring.Add(1)
	keys := []int{0, 1, 2, 3, 4, 5}
	assign := ring.Assign(keys)
	if len(assign) != len(keys) {
		t.Fatalf("ring assigned %d of %d keys", len(assign), len(keys))
	}

	plan, err := adascale.GenClusterPlan(adascale.ClusterPlanConfig{
		Seed: 3, HorizonMS: 1000, Rate: 2, Nodes: 2, Streams: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil {
		t.Fatal("nil generated plan")
	}
	if counts := adascale.DecodeClusterPlan([]byte{2, 0x20, 0x00, 1, 0, 200}, 2, 4, 1000).Count(); counts[adascale.ClusterEventKind(2)] != 1 {
		t.Fatal("DecodeClusterPlan dropped the blackout event")
	}

	cfg := adascale.VIDLike(9)
	cfg.FramesPerSnippet = 4
	ds, err := adascale.Generate(cfg, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	sys := adascale.Build(ds, adascale.DefaultBuildConfig())
	load, err := adascale.GenLoad(ds.Val, adascale.LoadConfig{Streams: 4, FPS: 15, FramesPerStream: 6, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := adascale.NewCluster(sys.Detector, sys.Regressor, adascale.ClusterConfig{
		Nodes: 2, EpochMS: 400, Plan: plan,
		Node: adascale.ServeConfig{
			Workers: 2, QueueDepth: 4, SLOMS: 100,
			Resilient: adascale.DefaultResilientConfig(),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := cl.Run(load)
	if rep.Lost() != 0 {
		t.Fatalf("cluster lost %d frames", rep.Lost())
	}
	if rep.Offered != 24 {
		t.Fatalf("offered %d frames, want 24", rep.Offered)
	}
	var nr adascale.ClusterNodeReport
	if len(rep.PerNode) == 0 {
		t.Fatal("no per-node rollups")
	}
	nr = rep.PerNode[0]
	if nr.EpochsUp == 0 && nr.Served > 0 {
		t.Fatal("node served frames in zero epochs")
	}
}

// TestSRegIsolated ensures SReg returns a copy callers cannot corrupt.
func TestSRegIsolated(t *testing.T) {
	s := adascale.SReg()
	s[0] = 1
	if adascale.SReg()[0] != 600 {
		t.Fatal("SReg must return a defensive copy")
	}
}
