module adascale

go 1.22
